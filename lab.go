// Package v6lab reproduces "IoT Bricks Over v6: Understanding IPv6 Usage
// in Smart Homes" (IMC 2024) end to end on a simulated smart-home testbed:
// 93 modelled consumer IoT devices behind a dnsmasq-style home router run
// the paper's six connectivity experiments, every LAN frame is captured in
// pcap form, and the paper's analysis pipeline re-derives each table and
// figure of the evaluation from those captures.
//
// Quick start:
//
//	lab := v6lab.New()
//	if err := lab.Run(); err != nil { ... }
//	fmt.Print(lab.Report(v6lab.Table3))
//
// New takes functional options (WithDevices, WithSeed, WithFaultProfile,
// WithMaxFramesPerRun) and Run composes parts: Run() alone performs the
// connectivity study, Run(Resilience()) the impairment grid,
// Run(Connectivity(), FirewallComparison(), Fleet(16)) all three.
package v6lab

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"v6lab/internal/adversary"
	"v6lab/internal/analysis"
	"v6lab/internal/device"
	"v6lab/internal/experiment"
	"v6lab/internal/faults"
	"v6lab/internal/firewall"
	"v6lab/internal/fleet"
	"v6lab/internal/report"
	"v6lab/internal/telemetry"
	"v6lab/internal/timeline"
)

// Artifact names one of the paper's tables or figures.
type Artifact string

// The reproducible artifacts.
const (
	Table3   Artifact = "table3"
	Table4   Artifact = "table4"
	Table5   Artifact = "table5"
	Table6   Artifact = "table6"
	Table7   Artifact = "table7"
	Table8   Artifact = "table8"
	Table9   Artifact = "table9"
	Table10  Artifact = "table10"
	Table12  Artifact = "table12"
	Table13  Artifact = "table13"
	Figure2  Artifact = "figure2"
	Figure3  Artifact = "figure3"
	Figure4  Artifact = "figure4"
	Figure5  Artifact = "figure5"
	DADAudit Artifact = "dad"
	// FuncMatrix extends the paper: functionality per experiment variant.
	FuncMatrix Artifact = "functional-matrix"
	Ports      Artifact = "ports"
	Tracking   Artifact = "tracking"
	// Firewall extends the paper: the §5.4.2 scan repeated from a WAN
	// vantage under each inbound-IPv6 firewall policy (§6's
	// countermeasure space). Requires Run(FirewallComparison(...)).
	Firewall Artifact = "firewall"
	// FleetStudy extends the paper from one testbed home to a population:
	// N independent simulated homes run in parallel and aggregate into
	// population-level prevalence results. Requires Run(Fleet(n)).
	FleetStudy Artifact = "fleet"
	// ResilienceStudy extends the paper: the Table 2 grid re-run under
	// deterministic impairment profiles (lossy Wi-Fi, a tunnel MTU clamp,
	// flaky router services). Requires Run(Resilience(...)).
	ResilienceStudy Artifact = "resilience"
	// AdversaryStudy extends the paper to the attacker's view of a fleet:
	// v6 address discovery (EUI-64 expansion, low-byte sweeps, leak
	// harvesting) scored against ground truth, a campaign sweep through
	// each home's firewall, and a worm-propagation time-to-compromise
	// table per policy. Requires Run(Adversary(n)).
	AdversaryStudy Artifact = "adversary"
	// TimelineStudy extends the paper over time: a population simulated
	// across days-to-weeks of event-scheduled time, reporting per-day
	// functionality, the DHCP lease-renewal funnel, sleep/wake and
	// power-cycle churn, and the re-addressing outages ISP prefix
	// rotations cause. Requires Run(Timeline(h)).
	TimelineStudy Artifact = "timeline"
)

// Artifacts lists every artifact in report order.
var Artifacts = []Artifact{
	Table3, Figure2, Table4, Table5, Table6, Figure3, Figure4, Table7,
	Table8, Table9, Table10, Table12, Table13, Figure5, DADAudit, Ports, Tracking,
	FuncMatrix, Firewall, FleetStudy, ResilienceStudy, AdversaryStudy, TimelineStudy,
}

// ErrUnknownArtifact is returned (wrapped) by ReportErr for artifact names
// outside Artifacts.
var ErrUnknownArtifact = errors.New("unknown artifact")

// options collects what the functional options configure.
type options struct {
	deviceNames []string
	devices     []*device.Profile
	seed        uint64
	maxFrames   int
	fault       *faults.Profile
	workers     int
	capture     CapturePolicy
	telemetry   *telemetry.Registry
	progress    telemetry.Sink
	env         *Env
	horizon     Horizon
	horizonSet  bool
}

// CapturePolicy selects whether the lab's experiments buffer their frames
// (see WithCapture); re-exported from the experiment package.
type CapturePolicy = experiment.CapturePolicy

// The capture policies. CaptureDefault is the zero value and keeps each
// driver's natural behavior: buffered for the lab's connectivity study
// (pcap artifacts, recorded hashes), streaming for fleet and resilience.
const (
	CaptureDefault = experiment.CaptureDefault
	CaptureFull    = experiment.CaptureFull
	CaptureNone    = experiment.CaptureNone
)

// Option configures New.
type Option func(*options)

// WithDevices restricts the testbed to the named devices (registry order
// is preserved regardless of the order given). Workload plans scale with
// the population, per experiment.StudyOptions. New panics on a name not
// in the registry — that is a programming error, not a runtime condition.
func WithDevices(names ...string) Option {
	return func(o *options) { o.deviceNames = append(o.deviceNames, names...) }
}

// WithSeed sets the seed that fault profiles without an explicit seed
// inherit (the default is 1). A lab is byte-deterministic in
// (options, parts): same seed and profile, same pcaps and reports.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithMaxFramesPerRun bounds each experiment's frame deliveries (0 keeps
// the default 3,000,000).
func WithMaxFramesPerRun(n int) Option {
	return func(o *options) { o.maxFrames = n }
}

// WithFaultProfile runs the whole lab under a deterministic impairment
// profile (see package faults). The clean profile (or none) keeps the
// perfect network and byte-identical default output.
func WithFaultProfile(p faults.Profile) Option {
	return func(o *options) { o.fault = &p }
}

// WithWorkers is the lab's single worker-count knob: it sizes the pool
// for the connectivity experiments, the analysis extraction, the
// resilience grid's profiles, and — unless their configs say otherwise —
// the fleet and adversary parts. Output is byte-identical for every n:
// results merge in config (or home-index) order and pcap timestamps are
// rebased onto the serial timeline (see the experiment package). 0 or 1
// means serial for the study engines and GOMAXPROCS for fleet/adversary
// pools; n > 1 with an active fault profile falls back to serial for the
// connectivity study (the fault path is order-dependent) while the
// resilience grid still parallelizes across profiles.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithCapture selects the lab's frame-capture policy. The default
// (CaptureFull) buffers every experiment's frames into an in-memory
// capture — the source for SavePcaps and the recorded pcap hashes.
// CaptureNone skips buffering entirely: each frame is parsed exactly once
// at delivery by a streaming analysis observer, reports stay byte-identical
// (asserted by TestStreamingEqualsBuffered), memory stays flat, and
// SavePcaps returns an error since there is nothing to write.
func WithCapture(p CapturePolicy) Option {
	return func(o *options) { o.capture = p }
}

// WithTelemetry instruments every subsystem the lab touches — the L2
// switch, router, firewall, conntrack, devices, cloud, and the
// experiment/fleet orchestration — into the given registry. Metrics are
// timestamped off the simulated clock and every update is an atomic
// addition, so the snapshot a run produces is byte-identical for any
// worker count (see TelemetrySnapshot). A nil registry (the default)
// runs fully uninstrumented and keeps the recorded byte-identity of
// uninstrumented releases.
func WithTelemetry(r *telemetry.Registry) Option {
	return func(o *options) { o.telemetry = r }
}

// WithProgress streams one event per completed unit of work — a Table 2
// experiment, a fleet home, a firewall policy, a resilience profile — to
// the sink. Events carry elapsed simulated time and arrive in completion
// order, which under parallel engines depends on scheduling: the stream
// is a live view, deliberately excluded from the deterministic snapshot.
func WithProgress(sink telemetry.Sink) Option {
	return func(o *options) { o.progress = sink }
}

// WithHorizon sets the lab's default simulated horizon: Timeline parts
// given a zero Horizon fall back to it. A zero or negative horizon is
// rejected at New time — the constructor records an ErrInvalidHorizon
// that the first Run/RunContext returns, so misconfiguration surfaces at
// the API boundary instead of panicking mid-run.
func WithHorizon(h Horizon) Option {
	return func(o *options) { o.horizon = h; o.horizonSet = true }
}

// Lab is the top-level handle: a configured study plus, after Run, the
// analyzed dataset.
type Lab struct {
	Study *experiment.Study
	Data  *analysis.Dataset
	// FirewallCmp holds the policy-comparison results once
	// Run(FirewallComparison(...)) has run.
	FirewallCmp *experiment.FirewallReport
	// FleetPop holds the multi-home population results once Run(Fleet(n))
	// has run.
	FleetPop *fleet.Population
	// Resil holds the impairment-grid results once Run(Resilience(...))
	// has run.
	Resil *experiment.ResilienceReport
	// Adv holds the attacker's-view results once Run(Adversary(n)) has
	// run.
	Adv *adversary.Report
	// TL holds the long-horizon results once Run(Timeline(h)) has run.
	TL *timeline.Report

	opts options
	// initErr records an option rejected at New time (e.g. an invalid
	// WithHorizon); the first Run/RunContext returns it.
	initErr error
	// ctx is the context of the RunContext call currently executing;
	// parts read it through runCtx. Nil outside Run/RunContext.
	ctx context.Context
}

// New builds the testbed (devices, workload plans, simulated cloud).
// Without options it is the paper's single-home study, byte-identical to
// earlier releases.
func New(opts ...Option) *Lab {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if len(o.deviceNames) > 0 {
		o.devices = resolveDevices(o.deviceNames)
	}
	l := &Lab{opts: o}
	if o.horizonSet {
		if err := o.horizon.validate(); err != nil {
			l.initErr = fmt.Errorf("WithHorizon: %w", err)
		}
	}
	so := l.studyOptions()
	if o.fault != nil && o.fault.Active() {
		fp := *o.fault
		if fp.Seed == 0 {
			fp.Seed = o.seed
		}
		so.Faults = &fp
	}
	l.Study = experiment.NewStudyWith(so)
	return l
}

// studyOptions reconstructs the (fault-free) study options the lab was
// built with, for parts that build their own studies.
func (l *Lab) studyOptions() experiment.StudyOptions {
	so := experiment.StudyOptions{
		Devices:         l.opts.devices,
		MaxFramesPerRun: l.opts.maxFrames,
		Capture:         l.opts.capture,
		// The factory is inert on buffered runs; under CaptureNone it is
		// what feeds the analysis pipeline.
		Observe:   analysis.Streaming(),
		Workers:   l.opts.workers,
		Telemetry: l.opts.telemetry,
		Progress:  l.opts.progress,
	}
	// A device-restricted lab simulates a different population than the
	// shared world holds, so it keeps a private one (see WithEnv).
	if l.opts.env != nil && len(l.opts.devices) == 0 {
		so.World = l.opts.env.world
		so.Pool = l.opts.env.pool
	}
	return so
}

// runCtx is the context parts run under: RunContext's argument, or
// context.Background() for plain Run.
func (l *Lab) runCtx() context.Context {
	if l.ctx != nil {
		return l.ctx
	}
	return context.Background()
}

// resolveDevices maps names onto registry profiles, preserving registry
// order and panicking on unknown names.
func resolveDevices(names []string) []*device.Profile {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*device.Profile
	for _, p := range device.Registry() {
		if want[p.Name] {
			out = append(out, p)
			delete(want, p.Name)
		}
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for n := range want {
			missing = append(missing, n)
		}
		panic(fmt.Sprintf("v6lab: WithDevices names not in registry: %s", strings.Join(missing, ", ")))
	}
	return out
}

// RunPart is one composable unit of work for Run. The provided parts —
// Connectivity, FirewallComparison, Fleet, Adversary, Resilience,
// Timeline — cover every study the lab knows how to run; each takes
// PartOptions (Capture, Seed, Workers, Impairments, or a full config via
// FleetConfig/AdversaryConfig/TimelineConfig) for per-part control.
type RunPart func(*Lab) error

// Connectivity is the core study: the six Table 2 experiments, the active
// DNS queries, the port scans, and the analysis pipeline over the
// captures. Run() with no parts is equivalent to Run(Connectivity()).
func Connectivity() RunPart {
	return func(l *Lab) error {
		if err := l.Study.RunAllContext(l.runCtx()); err != nil {
			return err
		}
		l.Data = analysis.FromStudy(l.Study)
		return nil
	}
}

// FirewallComparison re-runs the §5.4.2 scan from a WAN vantage under the
// named inbound-IPv6 firewall policies ("open", "stateful", "pinhole");
// with no names it compares all three. The pinhole policy carries the
// testbed's default holes (the v6-only service ports, i.e. the Samsung
// Fridge's). Results land in FirewallCmp and the Firewall artifact.
func FirewallComparison(policyNames ...string) RunPart {
	return func(l *Lab) error {
		var policies []firewall.Policy
		if len(policyNames) == 0 {
			policies = experiment.DefaultFirewallPolicies(l.Study.Profiles)
		} else {
			for _, name := range policyNames {
				p, err := firewall.ByName(name)
				if err != nil {
					return err
				}
				if ph, ok := p.(firewall.Pinhole); ok && len(ph.Rules) == 0 {
					p = firewall.Pinhole{Rules: experiment.DefaultPinholes(l.Study.Profiles)}
				}
				policies = append(policies, p)
			}
		}
		rep, err := l.Study.RunFirewallExposure(policies)
		if err != nil {
			return err
		}
		l.FirewallCmp = rep
		return nil
	}
}

// Run executes the given parts in order; with no parts it runs
// Connectivity — the six connectivity experiments, the active DNS
// queries, and the port scans, then the analysis pipeline over the
// captures.
func (l *Lab) Run(parts ...RunPart) error {
	return l.RunContext(context.Background(), parts...)
}

// RunContext is Run under a context. Cancellation is checked between
// parts and, inside each part, between experiments, fleet homes, and
// resilience profiles; a cancelled run returns ctx.Err() and leaves no
// partially-populated result on the lab — Data, FleetPop, FirewallCmp,
// and Resil each stay nil (or keep their previous value) unless their
// part completed.
func (l *Lab) RunContext(ctx context.Context, parts ...RunPart) error {
	if l.initErr != nil {
		return l.initErr
	}
	if len(parts) == 0 {
		parts = []RunPart{Connectivity()}
	}
	prev := l.ctx
	l.ctx = ctx
	defer func() { l.ctx = prev }()
	for _, part := range parts {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := part(l); err != nil {
			return err
		}
	}
	return nil
}

// ensure panics helpfully when Report is called before Run.
func (l *Lab) ensure() {
	if l.Data == nil {
		panic("v6lab: call Run before Report")
	}
}

// Report renders one artifact as text, side by side with the paper's
// published values. Unknown artifacts render as a one-line note; callers
// that need to distinguish that case should use ReportErr.
func (l *Lab) Report(a Artifact) string {
	out, err := l.ReportErr(a)
	if err != nil {
		return fmt.Sprintf("unknown artifact %q\n", a)
	}
	return out
}

// ReportErr renders one artifact as text, returning an error wrapping
// ErrUnknownArtifact for names outside Artifacts. The name check comes
// first, so an unknown artifact errors (rather than panics) even on a lab
// that has not run yet. Rendering itself is a thin pass over the typed
// Results view (see renderArtifact).
func (l *Lab) ReportErr(a Artifact) (string, error) {
	known := false
	for _, k := range Artifacts {
		if a == k {
			known = true
			break
		}
	}
	if !known {
		return "", fmt.Errorf("%w %q", ErrUnknownArtifact, a)
	}
	return renderArtifact(l.resultsView(), a)
}

// FullReport renders every artifact.
func (l *Lab) FullReport() string {
	l.ensure()
	out := ""
	for _, a := range Artifacts {
		// The resilience grid and adversary study are opt-in: when they
		// have not run, FullReport stays byte-identical to reports from
		// before each existed.
		if a == ResilienceStudy && l.Resil == nil {
			continue
		}
		if a == AdversaryStudy && l.Adv == nil {
			continue
		}
		if a == TimelineStudy && l.TL == nil {
			continue
		}
		out += l.Report(a) + "\n"
	}
	return out
}

// ExportCSV writes plot-ready CSV series (the Figure 2 funnel, Figure 3
// CDFs, and Figure 4 volume shares) into dir.
func (l *Lab) ExportCSV(dir string) error {
	l.ensure()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cdfs := l.Data.Figure3()
	files := map[string]string{
		"funnel.csv":      report.CSVFunnel(l.Data.Table3()),
		"volume.csv":      report.CSVVolumeShares(l.Data.Figure4()),
		"cdf_addrs.csv":   report.CSVCDF(cdfs.AddrsPerDevice),
		"cdf_queries.csv": report.CSVCDF(cdfs.AAAANamesPerDevice),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// SavePcaps writes one pcap file per connectivity experiment into dir.
// Labs built with WithCapture(CaptureNone) retain no frames and return an
// error here.
func (l *Lab) SavePcaps(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, res := range l.Study.Results {
		if res.Capture == nil {
			return fmt.Errorf("saving %s: lab ran without capture buffering (WithCapture(CaptureNone)); no frames retained", res.Config.ID)
		}
		path := filepath.Join(dir, res.Config.ID+".pcap")
		if err := res.Capture.Save(path); err != nil {
			return fmt.Errorf("saving %s: %w", path, err)
		}
	}
	return nil
}
