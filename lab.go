// Package v6lab reproduces "IoT Bricks Over v6: Understanding IPv6 Usage
// in Smart Homes" (IMC 2024) end to end on a simulated smart-home testbed:
// 93 modelled consumer IoT devices behind a dnsmasq-style home router run
// the paper's six connectivity experiments, every LAN frame is captured in
// pcap form, and the paper's analysis pipeline re-derives each table and
// figure of the evaluation from those captures.
//
// Quick start:
//
//	lab := v6lab.New()
//	if err := lab.Run(); err != nil { ... }
//	fmt.Print(lab.Report(v6lab.Table3))
package v6lab

import (
	"fmt"
	"os"
	"path/filepath"

	"v6lab/internal/analysis"
	"v6lab/internal/experiment"
	"v6lab/internal/firewall"
	"v6lab/internal/fleet"
	"v6lab/internal/report"
)

// Artifact names one of the paper's tables or figures.
type Artifact string

// The reproducible artifacts.
const (
	Table3   Artifact = "table3"
	Table4   Artifact = "table4"
	Table5   Artifact = "table5"
	Table6   Artifact = "table6"
	Table7   Artifact = "table7"
	Table8   Artifact = "table8"
	Table9   Artifact = "table9"
	Table10  Artifact = "table10"
	Table12  Artifact = "table12"
	Table13  Artifact = "table13"
	Figure2  Artifact = "figure2"
	Figure3  Artifact = "figure3"
	Figure4  Artifact = "figure4"
	Figure5  Artifact = "figure5"
	DADAudit Artifact = "dad"
	// FuncMatrix extends the paper: functionality per experiment variant.
	FuncMatrix Artifact = "functional-matrix"
	Ports      Artifact = "ports"
	Tracking   Artifact = "tracking"
	// Firewall extends the paper: the §5.4.2 scan repeated from a WAN
	// vantage under each inbound-IPv6 firewall policy (§6's
	// countermeasure space). Requires RunFirewallComparison.
	Firewall Artifact = "firewall"
	// FleetStudy extends the paper from one testbed home to a population:
	// N independent simulated homes run in parallel and aggregate into
	// population-level prevalence results. Requires RunFleet.
	FleetStudy Artifact = "fleet"
)

// Artifacts lists every artifact in report order.
var Artifacts = []Artifact{
	Table3, Figure2, Table4, Table5, Table6, Figure3, Figure4, Table7,
	Table8, Table9, Table10, Table12, Table13, Figure5, DADAudit, Ports, Tracking,
	FuncMatrix, Firewall, FleetStudy,
}

// Lab is the top-level handle: a configured study plus, after Run, the
// analyzed dataset.
type Lab struct {
	Study *experiment.Study
	Data  *analysis.Dataset
	// FirewallCmp holds the policy-comparison results once
	// RunFirewallComparison has run.
	FirewallCmp *experiment.FirewallReport
	// FleetPop holds the multi-home population results once RunFleet has
	// run.
	FleetPop *fleet.Population
}

// New builds the testbed (devices, workload plans, simulated cloud).
func New() *Lab {
	return &Lab{Study: experiment.NewStudy()}
}

// Run executes the six connectivity experiments, the active DNS queries,
// and the port scans, then runs the analysis pipeline over the captures.
func (l *Lab) Run() error {
	if err := l.Study.RunAll(); err != nil {
		return err
	}
	l.Data = analysis.FromStudy(l.Study)
	return nil
}

// RunFirewallComparison re-runs the §5.4.2 scan from a WAN vantage under
// the named inbound-IPv6 firewall policies ("open", "stateful",
// "pinhole"); with no names it compares all three. The pinhole policy
// carries the testbed's default holes (the v6-only service ports, i.e.
// the Samsung Fridge's). Results land in FirewallCmp and the Firewall
// artifact.
func (l *Lab) RunFirewallComparison(policyNames ...string) error {
	var policies []firewall.Policy
	if len(policyNames) == 0 {
		policies = experiment.DefaultFirewallPolicies(l.Study.Profiles)
	} else {
		for _, name := range policyNames {
			p, err := firewall.ByName(name)
			if err != nil {
				return err
			}
			if ph, ok := p.(firewall.Pinhole); ok && len(ph.Rules) == 0 {
				p = firewall.Pinhole{Rules: experiment.DefaultPinholes(l.Study.Profiles)}
			}
			policies = append(policies, p)
		}
	}
	rep, err := l.Study.RunFirewallExposure(policies)
	if err != nil {
		return err
	}
	l.FirewallCmp = rep
	return nil
}

// RunFleet simulates a population of n independent homes with the default
// fleet configuration (household-size distribution, connectivity and
// firewall-policy mixes, GOMAXPROCS workers). Results land in FleetPop
// and the FleetStudy artifact. It is independent of Run: either may run
// first, or alone.
func (l *Lab) RunFleet(n int) error {
	return l.RunFleetWith(fleet.Config{Homes: n})
}

// RunFleetWith is RunFleet with full control over the population.
func (l *Lab) RunFleetWith(cfg fleet.Config) error {
	pop, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	l.FleetPop = pop
	return nil
}

// ensure panics helpfully when Report is called before Run.
func (l *Lab) ensure() {
	if l.Data == nil {
		panic("v6lab: call Run before Report")
	}
}

// Report renders one artifact as text, side by side with the paper's
// published values.
func (l *Lab) Report(a Artifact) string {
	// The fleet artifact derives from its own population run, not from
	// the single-home dataset, so it renders without Run.
	if a == FleetStudy {
		if l.FleetPop == nil {
			return "Fleet population study: not run (pass -fleet N or call Lab.RunFleet)\n"
		}
		return report.Fleet(l.FleetPop)
	}
	l.ensure()
	ds := l.Data
	switch a {
	case Table3:
		return report.Table3(ds.Table3())
	case Figure2:
		return report.Figure2(ds.Table3())
	case Table4:
		return report.Table4(ds.Table4())
	case Table5:
		return report.Table5(ds.Table5())
	case Table6:
		return report.Table6(ds.Table6())
	case Table7:
		f, n, mf, mn := ds.Table7(3)
		return report.Table7(f, n, mf, mn)
	case Table8:
		out := report.Groups("Table 8 — feature support by manufacturer (>=3 devices)", ds.GroupBy("manufacturer", 3))
		return out + report.Groups("Table 8 (cont.) — by OS (>=2 devices)", ds.GroupBy("os", 2))
	case Table9:
		return report.Table9(ds.Table9())
	case Table10:
		return report.Table10(ds)
	case Table12:
		return report.Groups("Table 12 — feature support by purchase year", ds.GroupBy("year", 1))
	case Table13:
		return report.Table13(ds.GroupBy("manufacturer", 3))
	case Figure3:
		return report.Figure3(ds.Figure3())
	case Figure4:
		return report.Figure4(ds.Figure4())
	case Figure5:
		return report.Figure5(ds.EUI64Exposure())
	case DADAudit:
		return report.DAD(ds.DADAudit())
	case Ports:
		return report.PortScan(l.Study.Scan)
	case Tracking:
		return report.Tracking(ds.Tracking())
	case Firewall:
		if l.FirewallCmp == nil {
			return "Firewall policy comparison: not run (pass -firewall=compare or a policy name)\n"
		}
		return report.FirewallExposure(l.FirewallCmp)
	case FuncMatrix:
		var names []string
		for _, p := range ds.Profiles {
			names = append(names, p.Name)
		}
		return report.FunctionalMatrix(ds.Exps, names)
	}
	return fmt.Sprintf("unknown artifact %q\n", a)
}

// FullReport renders every artifact.
func (l *Lab) FullReport() string {
	l.ensure()
	out := ""
	for _, a := range Artifacts {
		out += l.Report(a) + "\n"
	}
	return out
}

// ExportCSV writes plot-ready CSV series (the Figure 2 funnel, Figure 3
// CDFs, and Figure 4 volume shares) into dir.
func (l *Lab) ExportCSV(dir string) error {
	l.ensure()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cdfs := l.Data.Figure3()
	files := map[string]string{
		"funnel.csv":      report.CSVFunnel(l.Data.Table3()),
		"volume.csv":      report.CSVVolumeShares(l.Data.Figure4()),
		"cdf_addrs.csv":   report.CSVCDF(cdfs.AddrsPerDevice),
		"cdf_queries.csv": report.CSVCDF(cdfs.AAAANamesPerDevice),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// SavePcaps writes one pcap file per connectivity experiment into dir.
func (l *Lab) SavePcaps(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, res := range l.Study.Results {
		path := filepath.Join(dir, res.Config.ID+".pcap")
		if err := res.Capture.Save(path); err != nil {
			return fmt.Errorf("saving %s: %w", path, err)
		}
	}
	return nil
}
