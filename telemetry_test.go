package v6lab

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strings"
	"sync"
	"testing"

	"v6lab/internal/telemetry"
)

// TestResultsNotRun: a fresh lab has no typed results yet.
func TestResultsNotRun(t *testing.T) {
	if _, err := New().Results(); !errors.Is(err, ErrNotRun) {
		t.Fatalf("err = %v, want ErrNotRun", err)
	}
}

// TestResultsTyped: after a run, Results exposes the structured data the
// renderers consume, and the telemetry snapshot when one was requested.
func TestResultsTyped(t *testing.T) {
	reg := telemetry.NewRegistry()
	lab := New(WithDevices("Wyze Cam", "Apple TV"), WithTelemetry(reg))
	if err := lab.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := lab.Results()
	if err != nil {
		t.Fatal(err)
	}
	if res.Study == nil || res.Data == nil {
		t.Fatal("Results missing study or dataset after Run")
	}
	if res.Fleet != nil || res.Resilience != nil || res.Firewall != nil {
		t.Error("Results reports parts that never ran")
	}
	if res.Telemetry == nil {
		t.Fatal("Results missing telemetry snapshot despite WithTelemetry")
	}
	if len(res.Telemetry.Points) == 0 {
		t.Fatal("telemetry snapshot has no points after an instrumented run")
	}
	var runs int64
	for _, p := range res.Telemetry.Points {
		if p.Name == "experiment_runs_total" {
			runs = p.Value
		}
	}
	if runs != 6 {
		t.Errorf("experiment_runs_total = %d, want 6", runs)
	}
	// ReportErr renders the same view: the firewall placeholder matches
	// the nil Firewall field.
	out, err := lab.ReportErr(Firewall)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not run") {
		t.Errorf("Firewall artifact = %q, want a not-run note", out)
	}
}

// TestTelemetrySnapshotDisabled: without WithTelemetry the snapshot
// accessor reports absence rather than an empty registry.
func TestTelemetrySnapshotDisabled(t *testing.T) {
	if _, ok := New().TelemetrySnapshot(); ok {
		t.Fatal("TelemetrySnapshot ok on a lab built without WithTelemetry")
	}
}

// instrumentedSnapshot runs the default study at the given worker count
// with a fresh registry and returns both exporter encodings plus the
// lab, for hash checks.
func instrumentedSnapshot(t *testing.T, workers int) ([]byte, []byte, *Lab) {
	t.Helper()
	reg := telemetry.NewRegistry()
	lab := New(WithWorkers(workers), WithTelemetry(reg))
	if err := lab.Run(); err != nil {
		t.Fatal(err)
	}
	snap, ok := lab.TelemetrySnapshot()
	if !ok {
		t.Fatal("instrumented lab lost its registry")
	}
	j, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j, snap.Prometheus(), lab
}

// TestTelemetryDeterminismStudy: the default study's snapshot is
// byte-identical at one and six workers, in both exporter encodings —
// and instrumenting the run does not move a byte of the report output
// (the recorded fullreport hash still matches).
func TestTelemetryDeterminismStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("two full studies in -short mode")
	}
	serialJSON, serialProm, lab := instrumentedSnapshot(t, 1)
	parJSON, parProm, _ := instrumentedSnapshot(t, 6)
	if !bytes.Equal(serialJSON, parJSON) {
		t.Errorf("JSON snapshots differ between 1 and 6 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serialJSON, parJSON)
	}
	if !bytes.Equal(serialProm, parProm) {
		t.Errorf("Prometheus snapshots differ between 1 and 6 workers")
	}
	sum := sha256.Sum256([]byte(lab.FullReport()))
	if got := hex.EncodeToString(sum[:]); got != studyHashes["fullreport"] {
		t.Errorf("instrumented fullreport hash = %s, want recorded %s", got, studyHashes["fullreport"])
	}
}

// TestTelemetryCapturePolicy: the analysis-path counters split cleanly by
// capture policy — a buffered study streams nothing and retains capture
// bytes, a streaming study buffers nothing and retains none — and the
// streaming counters are themselves worker-count invariant.
func TestTelemetryCapturePolicy(t *testing.T) {
	run := func(workers int, p CapturePolicy) map[string]int64 {
		reg := telemetry.NewRegistry()
		lab := New(WithWorkers(workers), WithTelemetry(reg), WithCapture(p))
		if err := lab.Run(); err != nil {
			t.Fatal(err)
		}
		snap, _ := lab.TelemetrySnapshot()
		vals := map[string]int64{}
		for _, pt := range snap.Points {
			vals[pt.Name] = pt.Value
		}
		return vals
	}
	buffered := run(1, CaptureFull)
	if buffered["analysis_frames_buffered_total"] == 0 {
		t.Error("buffered study recorded no buffered frames")
	}
	if buffered["analysis_frames_streamed_total"] != 0 {
		t.Errorf("buffered study streamed %d frames, want 0", buffered["analysis_frames_streamed_total"])
	}
	if buffered["pcapio_capture_bytes_retained"] == 0 {
		t.Error("buffered study retains no capture bytes")
	}
	streamed := run(1, CaptureNone)
	if streamed["analysis_frames_streamed_total"] != buffered["analysis_frames_buffered_total"] {
		t.Errorf("streamed %d frames, buffered run saw %d — same study must observe the same frames",
			streamed["analysis_frames_streamed_total"], buffered["analysis_frames_buffered_total"])
	}
	if streamed["analysis_frames_buffered_total"] != 0 || streamed["pcapio_capture_bytes_retained"] != 0 {
		t.Errorf("streaming study retained capture state: buffered=%d bytes=%d",
			streamed["analysis_frames_buffered_total"], streamed["pcapio_capture_bytes_retained"])
	}
	if par := run(6, CaptureNone); par["analysis_frames_streamed_total"] != streamed["analysis_frames_streamed_total"] {
		t.Errorf("frames_streamed_total differs across workers: 1→%d, 6→%d",
			streamed["analysis_frames_streamed_total"], par["analysis_frames_streamed_total"])
	}
}

// TestTelemetryDeterminismFleet: a 50-home fleet folds into a
// byte-identical snapshot at one and six workers.
func TestTelemetryDeterminismFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("two 50-home fleets in -short mode")
	}
	run := func(workers int) []byte {
		reg := telemetry.NewRegistry()
		lab := New(WithTelemetry(reg))
		part := Fleet(50, Workers(workers), Seed(5))
		if err := lab.Run(part); err != nil {
			t.Fatal(err)
		}
		snap, _ := lab.TelemetrySnapshot()
		j, err := snap.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	serial, par := run(1), run(6)
	if !bytes.Equal(serial, par) {
		t.Errorf("fleet snapshots differ between 1 and 6 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
	if !bytes.Contains(serial, []byte(`"fleet_homes_completed_total"`)) {
		t.Error("fleet snapshot missing fleet_homes_completed_total")
	}
}

// TestProgressStreamCoversUnits: a progress sink sees one event per
// experiment and per fleet home, each stamped with simulated time.
func TestProgressStreamCoversUnits(t *testing.T) {
	var mu sync.Mutex
	var events []telemetry.Event
	sink := telemetry.FuncSink(func(ev telemetry.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	lab := New(WithDevices("Wyze Cam"), WithProgress(sink))
	if err := lab.Run(Connectivity(), Fleet(3)); err != nil {
		t.Fatal(err)
	}
	byScope := map[string]int{}
	for _, ev := range events {
		byScope[ev.Scope]++
		if ev.Elapsed <= 0 {
			t.Errorf("event %s/%s has non-positive simulated elapsed %v", ev.Scope, ev.ID, ev.Elapsed)
		}
	}
	if byScope["experiment"] != 6 {
		t.Errorf("experiment events = %d, want 6", byScope["experiment"])
	}
	if byScope["fleet"] != 3 {
		t.Errorf("fleet events = %d, want 3", byScope["fleet"])
	}
}
