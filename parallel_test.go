package v6lab

// Byte-identity of the parallel study engine: a lab run on any worker
// count must produce exactly the FullReport and pcaps the serial engine
// produces — which are in turn pinned to recorded hashes, so a regression
// in either engine (or in the frame path underneath both) fails here.

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// studyHashes are the sha256 sums of the serial single-home study's
// outputs, recorded before the parallel engine and the zero-copy frame
// path landed. Any engine change that alters a byte shows up as a diff
// against these.
var studyHashes = map[string]string{
	"fullreport":          "96e255d3365ad1b4619211d1763277de6983cc9a56a8314294a5ff959235f365",
	"ipv4-only":           "d0857fa276bfa52be08665c09e763a429a94c90ba7d7634d13e348d0eb3ba2fc",
	"ipv6-only":           "764dcfa206c3a7397f052678a352428fe45cbf5c749081a4a2688f7baae8d944",
	"ipv6-only-rdnss":     "eb3d076d33e569e409697fdf07b08be61cf5751be8069473fe72d27cca8b262f",
	"ipv6-only-stateful":  "080218a283d5551c56dd4ecaad7804f2a21017e2f802b5fe760ca0fabb694a34",
	"dual-stack":          "b5cdb6ca8bf9737a9cf89d5cb23cd63aa18fee7eedd37d02b940baa83d21f4da",
	"dual-stack-stateful": "645bc9c9824eaa1aae98da865e34fe47c459bd51371b27562a83649a22d3e887",
}

// labHashes computes the sha256 of the full report and of each pcap.
func labHashes(t *testing.T, lab *Lab) map[string]string {
	t.Helper()
	out := map[string]string{}
	sum := sha256.Sum256([]byte(lab.FullReport()))
	out["fullreport"] = hex.EncodeToString(sum[:])
	dir := t.TempDir()
	if err := lab.SavePcaps(dir); err != nil {
		t.Fatal(err)
	}
	for _, res := range lab.Study.Results {
		b, err := os.ReadFile(filepath.Join(dir, res.Config.ID+".pcap"))
		if err != nil {
			t.Fatal(err)
		}
		s := sha256.Sum256(b)
		out[res.Config.ID] = hex.EncodeToString(s[:])
	}
	return out
}

// TestParallelStudyByteIdentity runs the study on six workers and checks
// every output hash against the recorded serial baselines (the serial
// engine itself is pinned to the same baselines by the shared lab).
func TestParallelStudyByteIdentity(t *testing.T) {
	par := New(WithWorkers(6))
	if err := par.Run(); err != nil {
		t.Fatal(err)
	}
	got := labHashes(t, par)
	serial := labHashes(t, sharedLab(t))
	for key, want := range studyHashes {
		if serial[key] != want {
			t.Errorf("serial %s = %s, recorded baseline %s", key, serial[key], want)
		}
		if got[key] != want {
			t.Errorf("parallel %s = %s, recorded baseline %s", key, got[key], want)
		}
	}
	if len(got) != len(studyHashes) {
		t.Errorf("parallel study produced %d outputs, want %d", len(got), len(studyHashes))
	}
}

// TestResilienceWorkersEquivalence checks the profile-parallel resilience
// grid against the serial one on a small population.
func TestResilienceWorkersEquivalence(t *testing.T) {
	names := []string{"Behmor Brewer", "Smarter IKettle", "Samsung Fridge"}
	serial := New(WithDevices(names...))
	if err := serial.Run(Resilience()); err != nil {
		t.Fatal(err)
	}
	par := New(WithDevices(names...), WithWorkers(4))
	if err := par.Run(Resilience()); err != nil {
		t.Fatal(err)
	}
	a, b := serial.Report(ResilienceStudy), par.Report(ResilienceStudy)
	if a != b {
		t.Fatalf("resilience reports differ between serial and 4-worker runs:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
