package v6lab

import (
	"v6lab/internal/experiment"
	"v6lab/internal/world"
)

// Env is a shared simulation environment: the immutable World — device
// registry, workload plans, and the primed cloud domain registry — built
// once, plus a pool of recycled per-run environments (device stacks,
// switch arenas, clocks, query counters). Labs created with WithEnv share
// both: world construction happens once instead of per lab, and parallel
// workers reuse warm environments instead of rebuilding ~93 stacks per
// study. Output stays byte-identical to a lab without an Env — the pool's
// reset contract re-seeds every piece of cross-run state absolutely.
//
// An Env is safe for concurrent use: the world is immutable after
// construction and the pool is internally locked. Two restrictions keep
// the sharing sound, both enforced automatically: a lab restricted with
// WithDevices builds a private world (its population differs), and an
// ablation lab (NewWithOptions with any mitigation set) builds a private
// world too, because ablations mutate profiles and the cloud registry
// before running.
type Env struct {
	world *world.World
	pool  *experiment.EnvPool
}

// NewEnv builds the full-registry World and an empty environment pool.
func NewEnv() *Env {
	return &Env{world: world.Build(nil), pool: experiment.NewEnvPool()}
}

// IdleEnvs reports how many warm run environments are parked in the pool
// — zero before any parallel lab has run, positive after (a warm pool is
// what makes the second lab's setup nearly free).
func (e *Env) IdleEnvs() int { return e.pool.Idle() }

// WithEnv runs the lab over the shared environment: its study adopts the
// Env's World and draws parallel run environments from the Env's pool.
// Ignored when WithDevices restricts the population (the world would not
// match); NewWithOptions drops it when an ablation is active.
func WithEnv(env *Env) Option {
	return func(o *options) { o.env = env }
}
