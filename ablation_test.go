package v6lab

import (
	"sync"
	"testing"
)

var (
	privOnce sync.Once
	privLab  *Lab
	privErr  error
)

func privacyLab(t *testing.T) *Lab {
	t.Helper()
	privOnce.Do(func() {
		privLab = NewWithOptions(Options{ForcePrivacyExtensions: true, ForceDAD: true})
		privErr = privLab.Run()
	})
	if privErr != nil {
		t.Fatal(privErr)
	}
	return privLab
}

// TestPrivacyExtensionAblation verifies the paper's §6 recommendation: with
// RFC 8981 privacy extensions everywhere, the EUI-64 tracking surface
// disappears completely.
func TestPrivacyExtensionAblation(t *testing.T) {
	lab := privacyLab(t)
	r := lab.EUI64Exposure()
	if r.Assign != 0 || r.Use != 0 || r.DNS != 0 || r.Data != 0 {
		t.Errorf("EUI-64 funnel with privacy extensions = %d/%d/%d/%d, want all zero",
			r.Assign, r.Use, r.DNS, r.Data)
	}
}

// TestForceDADAblation verifies full RFC 4862 compliance removes every
// audit finding.
func TestForceDADAblation(t *testing.T) {
	lab := privacyLab(t)
	a := lab.DADAudit()
	if a.DevicesSkipping != 0 || a.GUAsNoDAD+a.ULAsNoDAD+a.LLAsNoDAD != 0 {
		t.Errorf("DAD audit with forced compliance: %+v", a)
	}
}

// TestMitigationsPreserveReadiness: the privacy mitigations must not change
// the functional outcome — readiness is a DNS/destination problem, not an
// addressing one.
func TestMitigationsPreserveReadiness(t *testing.T) {
	lab := privacyLab(t)
	f := lab.Data.Table3()
	if got := f.Functional.Total(); got != 8 {
		t.Errorf("functional devices = %d, want 8 (mitigations should not change readiness)", got)
	}
}

// TestAAAAEverywhereAblation models a fully v6-ready destination Internet:
// every device with complete IPv6 support becomes functional, devices with
// stack limitations still fail.
func TestAAAAEverywhereAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("extra full study in -short mode")
	}
	lab := NewWithOptions(Options{AAAAEverywhere: true})
	if err := lab.Run(); err != nil {
		t.Fatal(err)
	}
	f := lab.Data.Table3()
	got := f.Functional.Total()
	if got <= 8 {
		t.Errorf("functional devices with AAAA everywhere = %d, want more than the baseline 8", got)
	}
	// Devices with no IPv6 stack at all can never become functional.
	if got > 93-f.NoIPv6.Total() {
		t.Errorf("functional (%d) exceeds devices with any IPv6 support (%d)", got, 93-f.NoIPv6.Total())
	}
	t.Logf("AAAA-everywhere: %d functional (baseline 8)", got)
}
