package v6lab

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"v6lab/internal/paper"
)

func sharedLab(t *testing.T) *Lab {
	t.Helper()
	benchOnce.Do(func() {
		benchLab = New()
		benchErr = benchLab.Run()
	})
	if benchErr != nil {
		t.Fatal(benchErr)
	}
	return benchLab
}

func TestEveryArtifactRenders(t *testing.T) {
	lab := sharedLab(t)
	for _, a := range Artifacts {
		out := lab.Report(a)
		if len(out) < 40 {
			t.Errorf("artifact %s: suspiciously short output %q", a, out)
		}
	}
	if full := lab.FullReport(); len(full) < 4000 {
		t.Errorf("full report only %d bytes", len(full))
	}
}

// TestHeadlineNumbers checks the abstract's percentages end to end.
func TestHeadlineNumbers(t *testing.T) {
	lab := sharedLab(t)
	f := lab.Data.Table3()
	pct := func(v paper.Vec) float64 { return math.Round(1000*float64(v.Total())/93) / 10 }
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"IPv6 traffic", pct(f.NDP), paper.Headline.PctV6Traffic},
		{"assign address", pct(f.Addr), 54.8}, // 51/93; the abstract's 53.8 counts 50
		{"AAAA in IPv6", pct(f.DNSAAAAReq), paper.Headline.PctAAAAInV6},
		{"Internet IPv6 data", pct(f.InternetData), paper.Headline.PctInternetV6},
		{"functional", pct(f.Functional), paper.Headline.PctFunctional},
	}
	for _, tc := range cases {
		if math.Abs(tc.got-tc.want) > 1.2 {
			t.Errorf("%s = %.1f%%, want %.1f%%", tc.name, tc.got, tc.want)
		}
	}
	// 16.1% of devices use EUI-64 global addresses.
	r := lab.Data.EUI64Exposure()
	if got := math.Round(1000*float64(r.Use)/93) / 10; math.Abs(got-paper.Headline.PctEUI64) > 0.5 {
		t.Errorf("EUI-64 use = %.1f%%, want %.1f%%", got, paper.Headline.PctEUI64)
	}
}

func TestSavePcaps(t *testing.T) {
	lab := sharedLab(t)
	dir := t.TempDir()
	if err := lab.SavePcaps(dir); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 6 {
		t.Fatalf("pcap files = %d, want 6", len(matches))
	}
}

func TestReportBeforeRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New().Report(Table3)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("second full run in -short mode")
	}
	a := sharedLab(t)
	b := New()
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	// Every artifact, rendered together: the full reports must match to
	// the byte.
	if ra, rb := a.FullReport(), b.FullReport(); ra != rb {
		i := 0
		for i < len(ra) && i < len(rb) && ra[i] == rb[i] {
			i++
		}
		lo := i - 100
		if lo < 0 {
			lo = 0
		}
		t.Errorf("full reports differ between runs at byte %d:\n...%s\nvs\n...%s",
			i, ra[lo:min(i+100, len(ra))], rb[lo:min(i+100, len(rb))])
	}
	// The raw captures too: one pcap per experiment, byte-identical.
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := a.SavePcaps(dirA); err != nil {
		t.Fatal(err)
	}
	if err := b.SavePcaps(dirB); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dirA, "*.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 6 {
		t.Fatalf("pcap files = %d, want 6", len(matches))
	}
	for _, pa := range matches {
		name := filepath.Base(pa)
		da, err := os.ReadFile(pa)
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Errorf("%s differs between runs (%d vs %d bytes)", name, len(da), len(db))
		}
	}
}

func TestExportCSV(t *testing.T) {
	lab := sharedLab(t)
	dir := t.TempDir()
	if err := lab.ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"funnel.csv", "volume.csv", "cdf_addrs.csv", "cdf_queries.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 3 {
			t.Errorf("%s: too few rows", name)
		}
	}
}
